package traffic

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Trace files hold one (epoch length, rate) sample per row — CSV with an
// optional "epoch_sec,rps" header, or JSONL with one
// {"epoch_sec": 1, "rps": 300} object per line. The epoch length must be
// uniform across rows (the simulator steps a fixed grid). Malformed rows
// fail with the file name and line number.

// LoadTrace reads a trace file, dispatching on the extension (.csv or
// .jsonl). The trace takes its name from the file's base name.
func LoadTrace(path string) (Trace, error) {
	ext := strings.ToLower(filepath.Ext(path))
	if ext != ".csv" && ext != ".jsonl" {
		return Trace{}, fmt.Errorf("traffic: %s: unsupported trace format %q (want .csv or .jsonl)", path, ext)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Trace{}, fmt.Errorf("traffic: %w", err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	var t Trace
	if ext == ".csv" {
		t, err = parseCSV(path, name, string(data))
	} else {
		t, err = parseJSONL(path, name, string(data))
	}
	if err != nil {
		return Trace{}, err
	}
	if err := t.Validate(); err != nil {
		return Trace{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// addRow appends one (epochSec, rps) sample, enforcing the uniform grid.
func (t *Trace) addRow(path string, lineNo int, epochSec, rps float64) error {
	if !(epochSec > 0) {
		return fmt.Errorf("traffic: %s:%d: epoch_sec must be positive, got %v", path, lineNo, epochSec)
	}
	if rps < 0 {
		return fmt.Errorf("traffic: %s:%d: rps must be non-negative, got %v", path, lineNo, rps)
	}
	if len(t.RPS) == 0 {
		t.EpochSec = epochSec
	} else if epochSec != t.EpochSec {
		return fmt.Errorf("traffic: %s:%d: epoch_sec %v differs from first row's %v (the grid must be uniform)",
			path, lineNo, epochSec, t.EpochSec)
	}
	t.RPS = append(t.RPS, rps)
	return nil
}

func parseCSV(path, name, data string) (Trace, error) {
	t := Trace{Name: name}
	for i, line := range strings.Split(data, "\n") {
		lineNo := i + 1
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(t.RPS) == 0 && line == "epoch_sec,rps" {
			continue // header row
		}
		fields := strings.Split(line, ",")
		if len(fields) != 2 {
			return Trace{}, fmt.Errorf("traffic: %s:%d: want 2 fields (epoch_sec,rps), got %d", path, lineNo, len(fields))
		}
		epochSec, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return Trace{}, fmt.Errorf("traffic: %s:%d: bad epoch_sec %q", path, lineNo, strings.TrimSpace(fields[0]))
		}
		rps, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return Trace{}, fmt.Errorf("traffic: %s:%d: bad rps %q", path, lineNo, strings.TrimSpace(fields[1]))
		}
		if err := t.addRow(path, lineNo, epochSec, rps); err != nil {
			return Trace{}, err
		}
	}
	return t, nil
}

func parseJSONL(path, name, data string) (Trace, error) {
	t := Trace{Name: name}
	for i, line := range strings.Split(data, "\n") {
		lineNo := i + 1
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var row struct {
			EpochSec *float64 `json:"epoch_sec"`
			RPS      *float64 `json:"rps"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return Trace{}, fmt.Errorf("traffic: %s:%d: bad JSON row: %v", path, lineNo, err)
		}
		if row.EpochSec == nil || row.RPS == nil {
			return Trace{}, fmt.Errorf("traffic: %s:%d: row needs both epoch_sec and rps", path, lineNo)
		}
		if err := t.addRow(path, lineNo, *row.EpochSec, *row.RPS); err != nil {
			return Trace{}, err
		}
	}
	return t, nil
}

// ResolveTrace maps a -trace value to a trace: values naming a file
// (containing a path separator or a recognised extension) load from
// disk, everything else resolves against the synthetic registry. The
// bool reports the file case — file curves are not part of the stock
// key space, so callers route them to Variant keys.
func ResolveTrace(v string) (Trace, bool, error) {
	if strings.ContainsRune(v, os.PathSeparator) ||
		strings.HasSuffix(v, ".csv") || strings.HasSuffix(v, ".jsonl") {
		t, err := LoadTrace(v)
		return t, true, err
	}
	t, err := TraceByName(v)
	return t, false, err
}
