// Package traffic closes the loop between the SoC model and a live
// service: a requests-per-second trace (synthetic diurnal/bursty/flat
// curves or a CSV/JSONL file) drives a discrete-time fleet simulator
// that queues requests from a multi-program workload mix onto a
// soc.Config's CMOS and TFET cores, asking a governor.Scheduler every
// epoch for core wake/sleep, DVFS and placement decisions. The output is
// the service operator's view of the HetCore tradeoff: energy per
// request, latency quantiles against an SLO, and deadline misses —
// THEAS-style cache-aware scheduling (co-locate cache-friendly programs
// on TFET cores, reserve CMOS cores for serial/latency-critical work)
// measured against naive and utilization-threshold baselines.
//
// Everything is deterministic: arrivals are a pure function of (trace,
// seed), policies are pure functions of the epoch state, and the
// simulator is straight-line float arithmetic — so traffic scenarios
// memoize in the engine and dist caches like any other device run.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"hetcore/internal/names"
	"hetcore/internal/trace"
)

// Trace is a requests-per-second curve sampled at a fixed epoch length.
type Trace struct {
	Name     string    `json:"name"`
	EpochSec float64   `json:"epoch_sec"`
	RPS      []float64 `json:"rps"`
}

// Validate checks the curve is usable.
func (t Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("traffic: trace has no name")
	}
	if !(t.EpochSec > 0) || math.IsInf(t.EpochSec, 0) {
		return fmt.Errorf("traffic: trace %s has bad epoch length %v", t.Name, t.EpochSec)
	}
	if len(t.RPS) == 0 {
		return fmt.Errorf("traffic: trace %s has no epochs", t.Name)
	}
	for i, r := range t.RPS {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("traffic: trace %s epoch %d has bad rate %v", t.Name, i, r)
		}
	}
	return nil
}

// DurationSec is the trace's total length.
func (t Trace) DurationSec() float64 { return float64(len(t.RPS)) * t.EpochSec }

// PeakRPS returns the highest epoch rate.
func (t Trace) PeakRPS() float64 {
	peak := 0.0
	for _, r := range t.RPS {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// MeanRPS returns the time-weighted mean rate.
func (t Trace) MeanRPS() float64 {
	if len(t.RPS) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range t.RPS {
		sum += r
	}
	return sum / float64(len(t.RPS))
}

// The synthetic curves are sized for the default c4t4g0 mix at the
// default request size: the diurnal peak pushes a naive all-awake fleet
// to ~30% utilization while the trough leaves it nearly idle — the
// regime where wake/sleep policy dominates energy per request.
const (
	syntheticEpochs   = 36
	syntheticEpochSec = 1.0
)

// Diurnal returns the default day-shaped curve: a raised cosine from a
// ~300 RPS trough to a ~2400 RPS peak.
func Diurnal() Trace {
	rps := make([]float64, syntheticEpochs)
	const base, peak = 300, 2400
	for i := range rps {
		phase := 2 * math.Pi * float64(i) / float64(syntheticEpochs-1)
		rps[i] = base + (peak-base)*(1-math.Cos(phase))/2
	}
	return Trace{Name: "diurnal", EpochSec: syntheticEpochSec, RPS: rps}
}

// Bursty returns a flat ~600 RPS floor with seeded 4x bursts. The burst
// pattern uses a fixed internal seed: the curve is part of the trace's
// identity (engine keys name it), so it must not vary per run.
func Bursty() Trace {
	rng := trace.NewRNG(0xb0b5)
	rps := make([]float64, syntheticEpochs)
	const base = 600
	for i := range rps {
		rps[i] = base
		if rng.Bool(0.15) {
			rps[i] = base * 4
		}
	}
	return Trace{Name: "bursty", EpochSec: syntheticEpochSec, RPS: rps}
}

// Flat returns a constant 1200 RPS curve — the control case where
// wake/sleep decisions settle to a fixed point.
func Flat() Trace {
	rps := make([]float64, syntheticEpochs)
	for i := range rps {
		rps[i] = 1200
	}
	return Trace{Name: "flat", EpochSec: syntheticEpochSec, RPS: rps}
}

// synthetic is the named-trace registry, in declaration order.
var synthetic = []func() Trace{Diurnal, Bursty, Flat}

// TraceNames lists the synthetic traces in registry order.
func TraceNames() []string {
	out := make([]string, len(synthetic))
	for i, f := range synthetic {
		out[i] = f().Name
	}
	return out
}

// TraceByName returns a synthetic trace. A miss names the closest known
// trace, the same way the experiment registry answers an unknown -exp.
func TraceByName(name string) (Trace, error) {
	for _, f := range synthetic {
		if t := f(); t.Name == name {
			return t, nil
		}
	}
	ns := TraceNames()
	sort.Strings(ns)
	return Trace{}, fmt.Errorf("traffic: unknown trace %q (closest match %q; have %v)",
		name, names.Nearest(name, ns), ns)
}
