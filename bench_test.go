// Package hetcore_test benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark runs the corresponding
// experiment and reports the paper's headline quantities as custom
// metrics (suffix _norm = normalised to BaseCMOS), so a
// `go test -bench=. -benchmem` run doubles as a results report.
//
// The CPU/GPU figure benchmarks use a reduced workload subset and
// instruction budget per iteration; the harness and hetsim tests cover
// the full suite.
package hetcore_test

import (
	"testing"

	"hetcore/internal/device"
	"hetcore/internal/gpu"
	"hetcore/internal/harness"
	"hetcore/internal/hetsim"
	"hetcore/internal/trace"
)

// benchOpts keeps per-iteration cost manageable.
var benchOpts = harness.Options{
	Instructions: 80_000,
	Seed:         1,
	Workloads:    []string{"barnes", "lu", "canneal"},
	Kernels:      []string{"MatrixMultiplication", "Histogram", "PrefixSum"},
}

func reportAverages(b *testing.B, t harness.Table, cols ...string) {
	b.Helper()
	for _, c := range cols {
		v, err := t.Cell("Average", c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, c+"_norm")
	}
}

// BenchmarkTableI regenerates Table I (device characteristics).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.TableI()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(device.Characterize(device.HetJTFET).DelayRatio(), "tfet_delay_ratio")
}

// BenchmarkFig1 regenerates Figure 1 (I-V curves).
func BenchmarkFig1(b *testing.B) {
	tfet, mos := device.NHetJTFET(), device.NMOSFET()
	var cross float64
	for i := 0; i < b.N; i++ {
		v, err := device.CrossoverVoltage(tfet, mos, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		cross = v
	}
	b.ReportMetric(cross, "crossover_V")
}

// BenchmarkFig2 regenerates Figure 2 (ALU power vs activity).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := device.ActivitySweep(10)
		if len(pts) != 11 {
			b.Fatal("bad sweep")
		}
	}
	b.ReportMetric(device.IdleLeakageRatio(), "idle_ratio")
}

// BenchmarkFig3 regenerates Figure 3 (Vdd-frequency curves and DVFS pairs).
func BenchmarkFig3(b *testing.B) {
	d := device.NewDVFS()
	var turbo device.VoltagePair
	for i := 0; i < b.N; i++ {
		p, err := d.PairFor(2.5)
		if err != nil {
			b.Fatal(err)
		}
		turbo = p
	}
	nom := d.Nominal()
	b.ReportMetric((turbo.VCMOS-nom.VCMOS)*1000, "dV_cmos_mV")
	b.ReportMetric((turbo.VTFET-nom.VTFET)*1000, "dV_tfet_mV")
}

// BenchmarkFig7 regenerates Figure 7 (CPU execution time).
func BenchmarkFig7(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X")
}

// BenchmarkFig8 regenerates Figure 8 (CPU energy).
func BenchmarkFig8(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X")
}

// BenchmarkFig9 regenerates Figure 9 (CPU ED²).
func BenchmarkFig9(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "BaseHet", "AdvHet", "AdvHet-2X")
}

// BenchmarkFig10 regenerates Figure 10 (GPU execution time).
func BenchmarkFig10(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X")
}

// BenchmarkFig11 regenerates Figure 11 (GPU energy).
func BenchmarkFig11(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "BaseTFET", "BaseHet", "AdvHet")
}

// BenchmarkFig12 regenerates Figure 12 (GPU ED²).
func BenchmarkFig12(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, t, "AdvHet", "AdvHet-2X")
}

// BenchmarkFig13 regenerates Figure 13 (design sensitivity).
func BenchmarkFig13(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if v, err := t.Cell("AdvHet", "ED2"); err == nil {
		b.ReportMetric(v, "advhet_ed2_norm")
	}
	if v, err := t.Cell("BaseL3", "energy"); err == nil {
		b.ReportMetric(v, "basel3_energy_norm")
	}
}

// BenchmarkFig14 regenerates Figure 14 (DVFS and process variation).
func BenchmarkFig14(b *testing.B) {
	opts := benchOpts
	opts.Workloads = []string{"barnes", "lu"}
	var t harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = harness.Fig14(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if base, err := t.Cell("BaseFreq-2GHz", "AdvHet"); err == nil {
		b.ReportMetric(base, "advhet_2GHz_norm")
	}
	if boost, err := t.Cell("BoostFreq-2.5GHz", "AdvHet"); err == nil {
		b.ReportMetric(boost, "advhet_2.5GHz_norm")
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out. ---

func runCPUNorm(b *testing.B, name string, prof trace.Profile) hetsim.CPUResult {
	b.Helper()
	cfg, err := hetsim.CPUConfigByName(name)
	if err != nil {
		b.Fatal(err)
	}
	r, err := hetsim.RunCPU(cfg, prof, hetsim.RunOpts{TotalInstructions: 80_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationDualSpeedALU isolates the dual-speed ALU cluster
// (BaseHet-Enh vs BaseHet-Split).
func BenchmarkAblationDualSpeedALU(b *testing.B) {
	prof, _ := trace.CPUWorkload("radix") // integer-heavy: ALU-sensitive
	var enh, split hetsim.CPUResult
	for i := 0; i < b.N; i++ {
		enh = runCPUNorm(b, "BaseHet-Enh", prof)
		split = runCPUNorm(b, "BaseHet-Split", prof)
	}
	b.ReportMetric(split.TimeSec/enh.TimeSec, "split_vs_enh_time")
}

// BenchmarkAblationAsymDL1 isolates the asymmetric DL1 (BaseHet-Split vs
// AdvHet).
func BenchmarkAblationAsymDL1(b *testing.B) {
	prof, _ := trace.CPUWorkload("canneal") // load-use heavy: DL1-sensitive
	var split, adv hetsim.CPUResult
	for i := 0; i < b.N; i++ {
		split = runCPUNorm(b, "BaseHet-Split", prof)
		adv = runCPUNorm(b, "AdvHet", prof)
	}
	b.ReportMetric(adv.TimeSec/split.TimeSec, "advhet_vs_split_time")
	b.ReportMetric(adv.FastHitRate, "fast_hit_rate")
}

// BenchmarkAblationRFCache isolates the GPU register file cache (BaseHet
// vs AdvHet).
func BenchmarkAblationRFCache(b *testing.B) {
	k, err := gpu.KernelByName("Reduction")
	if err != nil {
		b.Fatal(err)
	}
	var het, adv hetsim.GPUResult
	for i := 0; i < b.N; i++ {
		hc, _ := hetsim.GPUConfigByName("BaseHet")
		ac, _ := hetsim.GPUConfigByName("AdvHet")
		het, err = hetsim.RunGPU(hc, k, 1)
		if err != nil {
			b.Fatal(err)
		}
		adv, err = hetsim.RunGPU(ac, k, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(adv.TimeSec/het.TimeSec, "advhet_vs_basehet_time")
	b.ReportMetric(adv.RFCacheHitRate, "rf_cache_hit_rate")
}

// BenchmarkCoreThroughput measures raw simulator speed (simulated
// instructions per second) — useful when sizing experiment budgets.
func BenchmarkCoreThroughput(b *testing.B) {
	cfg, _ := hetsim.CPUConfigByName("BaseCMOS")
	prof, _ := trace.CPUWorkload("lu")
	opts := hetsim.RunOpts{TotalInstructions: 100_000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetsim.RunCPU(cfg, prof, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(opts.TotalInstructions)*float64(b.N)/b.Elapsed().Seconds(), "sim_insts/s")
}

// BenchmarkGPUThroughput measures GPU simulator speed.
func BenchmarkGPUThroughput(b *testing.B) {
	cfg, _ := hetsim.GPUConfigByName("BaseCMOS")
	k, _ := gpu.KernelByName("DCT")
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := hetsim.RunGPU(cfg, k, 1)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.WaveInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "wave_insts/s")
}

// BenchmarkAblationCMAFPU isolates the Section IV-C4 CMA-multiplier FPU
// alternative (AdvHet vs AdvHet-CMA).
func BenchmarkAblationCMAFPU(b *testing.B) {
	prof, _ := trace.CPUWorkload("blackscholes") // FP-heavy
	var adv, cma hetsim.CPUResult
	for i := 0; i < b.N; i++ {
		adv = runCPUNorm(b, "AdvHet", prof)
		cma = runCPUNorm(b, "AdvHet-CMA", prof)
	}
	b.ReportMetric(cma.TimeSec/adv.TimeSec, "cma_vs_fma_time")
	b.ReportMetric(cma.Energy.Total()/adv.Energy.Total(), "cma_vs_fma_energy")
}

// BenchmarkAblationPartitionedRF compares the related-work partitioned
// register file against the AdvHet RF cache on the same TFET GPU.
func BenchmarkAblationPartitionedRF(b *testing.B) {
	k, _ := gpu.KernelByName("MatrixMultiplication")
	var cache, part hetsim.GPUResult
	for i := 0; i < b.N; i++ {
		cc, _ := hetsim.GPUConfigByName("AdvHet")
		pc, _ := hetsim.GPUConfigByName("AdvHet-PartRF")
		var err error
		if cache, err = hetsim.RunGPU(cc, k, 1); err != nil {
			b.Fatal(err)
		}
		if part, err = hetsim.RunGPU(pc, k, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(part.TimeSec/cache.TimeSec, "partrf_vs_rfcache_time")
}

// BenchmarkAblationCompilerScheduling quantifies the future-work headroom
// of latency-aware kernel scheduling on the BaseHet GPU.
func BenchmarkAblationCompilerScheduling(b *testing.B) {
	base, _ := gpu.KernelByName("PrefixSum") // dependency-dense
	sched, err := base.CompilerScheduled(0.4)
	if err != nil {
		b.Fatal(err)
	}
	cfg, _ := hetsim.GPUConfigByName("BaseHet")
	var plain, opt hetsim.GPUResult
	for i := 0; i < b.N; i++ {
		if plain, err = hetsim.RunGPU(cfg, base, 1); err != nil {
			b.Fatal(err)
		}
		if opt, err = hetsim.RunGPU(cfg, sched, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(opt.TimeSec/plain.TimeSec, "scheduled_vs_plain_time")
}

// BenchmarkAblationMigration regenerates the Section VIII comparison on
// one workload.
func BenchmarkAblationMigration(b *testing.B) {
	prof, _ := trace.CPUWorkload("barnes")
	opts := hetsim.RunOpts{TotalInstructions: 80_000, Seed: 1}
	var adv hetsim.CPUResult
	var cmp hetsim.HeteroCMPResult
	for i := 0; i < b.N; i++ {
		var err error
		advCfg, _ := hetsim.CPUConfigByName("AdvHet")
		if adv, err = hetsim.RunCPU(advCfg, prof, opts); err != nil {
			b.Fatal(err)
		}
		if cmp, err = hetsim.RunHeteroCMP(hetsim.DefaultHeteroCMP(), prof, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.TimeSec/adv.TimeSec, "migrationCMP_vs_advhet_time")
	b.ReportMetric(cmp.Energy.Total()/adv.Energy.Total(), "migrationCMP_vs_advhet_energy")
}
