#!/bin/sh
# ci.sh - the full local gate: formatting, vet, build, race-enabled tests,
# and the cross-run regression diff against the committed sim-rate baseline.
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
served_pid=""
cleanup() {
    [ -n "$served_pid" ] && kill "$served_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== embedded assets =="
asset=internal/obs/dashboard.html
if [ ! -s "$asset" ]; then
    echo "missing or empty embedded dashboard asset: $asset" >&2
    exit 1
fi
if grep -nE '[ 	]+$' "$asset" >&2; then
    echo "trailing whitespace in $asset" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== engine determinism (go test -race) =="
# The run-plan engine carries the whole -jobs determinism contract, so
# its tests (plus the harness golden jobs=1-vs-jobs=8 comparison) get an
# explicit race-enabled pass before the full suite.
go test -race ./internal/engine/
go test -race -run 'TestFigTablesDeterministicAcrossJobs|TestEngineCacheSharedAcrossFigures|TestSoCDeterministicAcrossJobs|TestSoCAccelDeterministicAcrossJobs|TestTrafficDeterministicAcrossJobs' ./internal/harness/

echo "== go test -race =="
go test -race ./...

echo "== regression gate (hetcore diff) =="
# Re-measure this host's simulation rate at the baseline's budget and
# compare against the committed record. The deterministic instruction
# counts must match exactly (default 0.1% tolerance); the rates are host
# timing, so only a >75% slowdown fails — catching pathological
# regressions without flaking on machine-to-machine variance.
go build -o "$tmp/hetcore" ./cmd/hetcore
# Seed the trend history from the committed baseline so the bench
# measurement below also lands a history entry for the trend gate.
cp scripts/baseline/BENCH_history.jsonl "$tmp/BENCH_history.jsonl"
"$tmp/hetcore" bench -instr 300000 -o "$tmp/BENCH_sim_rate.json" \
    -history "$tmp/BENCH_history.jsonl" >/dev/null
"$tmp/hetcore" diff -rate-tol 75 scripts/baseline/BENCH_sim_rate.json "$tmp/BENCH_sim_rate.json"

echo "== hotspots gate (hetcore hotspots) =="
# A tiny workload under the stage profiler and pprof must yield a
# schema-stamped report with a populated stage attribution. The share
# arithmetic (sums to 1 per device group) is pinned by go tests; this
# gate proves the end-to-end CLI path on a real profile.
"$tmp/hetcore" hotspots -instr 150000 -json -o "$tmp/hotspots.json" >/dev/null
for want in '"schema": "hetcore.prof/v1"' '"stage_attribution"' '"stage": "cpu.execute"'; do
    if ! grep -q "$want" "$tmp/hotspots.json"; then
        echo "hotspots report missing $want:" >&2
        cat "$tmp/hotspots.json" >&2
        exit 1
    fi
done

echo "== dist gate (persistent cache + hetserved) =="
# End-to-end check of internal/dist: run the same experiment twice
# against one -cache-dir — the second run must simulate nothing
# (engine_jobs_run == 0) and print byte-identical tables — then a third
# time through a live hetserved daemon, which must also match.
go build -o "$tmp/hetserved" ./cmd/hetserved
"$tmp/hetserved" -addr 127.0.0.1:0 -addr-file "$tmp/hetserved.addr" \
    -cache-dir "$tmp/server-cache" 2>"$tmp/hetserved.log" &
served_pid=$!

dist_run() {
    # $1: output file, extra args follow.
    out=$1; shift
    "$tmp/hetcore" run -exp fig7 -workloads barnes,radix -instr 40000 \
        "$@" >"$out"
}

dist_run "$tmp/dist-run1.txt" -cache-dir "$tmp/client-cache"
dist_run "$tmp/dist-run2.txt" -cache-dir "$tmp/client-cache" -metrics-out "$tmp/dist-run2.json"
cmp "$tmp/dist-run1.txt" "$tmp/dist-run2.txt" || {
    echo "cached rerun output differs from the first run" >&2
    exit 1
}
if ! grep -q '"engine_jobs_run": 0' "$tmp/dist-run2.json"; then
    echo "cached rerun still simulated (engine_jobs_run != 0):" >&2
    grep '"engine_' "$tmp/dist-run2.json" >&2
    exit 1
fi

# Wait for the daemon to publish its address (it builds in background
# while the cache runs above execute).
i=0
while [ ! -s "$tmp/hetserved.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$served_pid" 2>/dev/null; then
        echo "hetserved did not start:" >&2
        cat "$tmp/hetserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/hetserved.addr")

dist_run "$tmp/dist-run3.txt" -remote "$addr"
cmp "$tmp/dist-run1.txt" "$tmp/dist-run3.txt" || {
    echo "remote run output differs from the local run" >&2
    cat "$tmp/hetserved.log" >&2
    exit 1
}

echo "== soc gate (determinism + cached rerun) =="
# The SoC design-space search must render byte-identical tables across
# -jobs widths, and a second sweep against the same -cache-dir must
# simulate nothing: its components and compositions are all engine jobs,
# so they disk-cache like any figure suite.
soc_run() {
    # $1: output file, extra args follow.
    out=$1; shift
    "$tmp/hetcore" soc -workloads fft,radix -instr 40000 "$@" >"$out"
}

soc_run "$tmp/soc-jobs1.txt" -jobs 1 -cache-dir "$tmp/soc-cache"
soc_run "$tmp/soc-jobs8.txt" -jobs 8 -cache-dir "$tmp/soc-cache" \
    -metrics-out "$tmp/soc-rerun.json"
cmp "$tmp/soc-jobs1.txt" "$tmp/soc-jobs8.txt" || {
    echo "soc search differs between -jobs=1 and -jobs=8" >&2
    exit 1
}
if ! grep -q '"engine_jobs_run": 0' "$tmp/soc-rerun.json"; then
    echo "cached soc rerun still simulated (engine_jobs_run != 0):" >&2
    grep '"engine_' "$tmp/soc-rerun.json" >&2
    exit 1
fi
if ! grep -q '"soc_configs_evaluated"' "$tmp/soc-rerun.json"; then
    echo "soc manifest counters missing from the report" >&2
    exit 1
fi

echo "== accel gate (soc -accel determinism + cached rerun) =="
# The accelerator search rides the same engine contract: -jobs widths
# must render byte-identical tables (now including the accel and
# socaccel comparisons), and a cached rerun must simulate nothing.
accel_run() {
    # $1: output file, extra args follow.
    out=$1; shift
    "$tmp/hetcore" soc -accel -workloads fft -instr 40000 "$@" >"$out"
}

accel_run "$tmp/accel-jobs1.txt" -jobs 1 -cache-dir "$tmp/accel-cache"
accel_run "$tmp/accel-jobs8.txt" -jobs 8 -cache-dir "$tmp/accel-cache" \
    -metrics-out "$tmp/accel-rerun.json"
cmp "$tmp/accel-jobs1.txt" "$tmp/accel-jobs8.txt" || {
    echo "accel search differs between -jobs=1 and -jobs=8" >&2
    exit 1
}
if ! grep -q '"engine_jobs_run": 0' "$tmp/accel-rerun.json"; then
    echo "cached accel rerun still simulated (engine_jobs_run != 0):" >&2
    grep '"engine_' "$tmp/accel-rerun.json" >&2
    exit 1
fi
if ! grep -q 'TFET accelerator mix' "$tmp/accel-jobs1.txt"; then
    echo "socaccel verdict missing from soc -accel output" >&2
    exit 1
fi

echo "== traffic gate (determinism + cached rerun + energy trend) =="
# The traffic scenario matrix rides the same engine contract: -jobs
# widths must render byte-identical tables and reports, and a second run
# against the same -cache-dir must simulate nothing. The second run also
# appends its hetcore.traffic/v1 report to the trend history, so the
# energy-per-request accounting is gated against the committed baseline
# by the trend step below.
traffic_run() {
    # $1: output file, extra args follow.
    out=$1; shift
    "$tmp/hetcore" traffic -instr 40000 "$@" >"$out"
}

traffic_run "$tmp/traffic-jobs1.txt" -jobs 1 -cache-dir "$tmp/traffic-cache" \
    -o "$tmp/traffic-report1.json"
traffic_run "$tmp/traffic-jobs8.txt" -jobs 8 -cache-dir "$tmp/traffic-cache" \
    -o "$tmp/traffic-report2.json" -metrics-out "$tmp/traffic-rerun.json" \
    -history "$tmp/BENCH_history.jsonl"
# The stdout tables differ only in the trailing wrote/appended lines.
grep -v '^wrote \|^appended ' "$tmp/traffic-jobs1.txt" >"$tmp/traffic-jobs1.tbl"
grep -v '^wrote \|^appended ' "$tmp/traffic-jobs8.txt" >"$tmp/traffic-jobs8.tbl"
cmp "$tmp/traffic-jobs1.tbl" "$tmp/traffic-jobs8.tbl" || {
    echo "traffic table differs between -jobs=1 and -jobs=8" >&2
    exit 1
}
cmp "$tmp/traffic-report1.json" "$tmp/traffic-report2.json" || {
    echo "cached traffic rerun report is not byte-identical" >&2
    exit 1
}
if ! grep -q '"engine_jobs_run": 0' "$tmp/traffic-rerun.json"; then
    echo "cached traffic rerun still simulated (engine_jobs_run != 0):" >&2
    grep '"engine_' "$tmp/traffic-rerun.json" >&2
    exit 1
fi
if ! grep -q '"schema": "hetcore.traffic/v1"' "$tmp/traffic-report1.json"; then
    echo "traffic report missing its schema stamp" >&2
    exit 1
fi

echo "== load gate (hetload p99 vs baseline) =="
# Drive a short closed-loop job stream at the live daemon and gate the
# client-observed serving latency. With -rate-tol 400 the gate trips
# only when a latency quantile exceeds 5x the committed baseline (or
# any request errors against the zero-error baseline) — catching
# serialization bugs and accidental hot-path sleeps without flaking on
# host speed.
go build -o "$tmp/hetload" ./cmd/hetload
"$tmp/hetload" -addr "$addr" -duration 2s -concurrency 4 -cold 0.2 \
    -o "$tmp/BENCH_load.json" -history "$tmp/BENCH_history.jsonl" >/dev/null
"$tmp/hetcore" diff -rate-tol 400 scripts/baseline/BENCH_load.json "$tmp/BENCH_load.json"

kill "$served_pid" 2>/dev/null
served_pid=""

echo "== trend gate (hetcore trend) =="
# The history now holds the committed baseline entries plus this run's
# bench, load and traffic measurements; the newest entry of each kind must not
# regress against the median of its predecessors. Deterministic counts
# stay exact; host-timing rates share the load gate's loose 400%
# tolerance so the gate proves the trend pipeline without host flake.
"$tmp/hetcore" trend -history "$tmp/BENCH_history.jsonl" -rate-tol 400

echo "CI OK"
