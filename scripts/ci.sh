#!/bin/sh
# ci.sh - the full local gate: formatting, vet, build, race-enabled tests,
# and the cross-run regression diff against the committed sim-rate baseline.
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== embedded assets =="
asset=internal/obs/dashboard.html
if [ ! -s "$asset" ]; then
    echo "missing or empty embedded dashboard asset: $asset" >&2
    exit 1
fi
if grep -nE '[ 	]+$' "$asset" >&2; then
    echo "trailing whitespace in $asset" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== engine determinism (go test -race) =="
# The run-plan engine carries the whole -jobs determinism contract, so
# its tests (plus the harness golden jobs=1-vs-jobs=8 comparison) get an
# explicit race-enabled pass before the full suite.
go test -race ./internal/engine/
go test -race -run 'TestFigTablesDeterministicAcrossJobs|TestEngineCacheSharedAcrossFigures' ./internal/harness/

echo "== go test -race =="
go test -race ./...

echo "== regression gate (hetcore diff) =="
# Re-measure this host's simulation rate at the baseline's budget and
# compare against the committed record. The deterministic instruction
# counts must match exactly (default 0.1% tolerance); the rates are host
# timing, so only a >75% slowdown fails — catching pathological
# regressions without flaking on machine-to-machine variance.
go build -o "$tmp/hetcore" ./cmd/hetcore
"$tmp/hetcore" bench -instr 300000 -o "$tmp/BENCH_sim_rate.json" >/dev/null
"$tmp/hetcore" diff -rate-tol 75 scripts/baseline/BENCH_sim_rate.json "$tmp/BENCH_sim_rate.json"

echo "CI OK"
