// Command hetload is the load generator for hetserved daemons: it
// drives an open- or closed-loop stream of cached-key and cold-key jobs
// at one daemon and reports client-observed throughput and latency
// quantiles (p50/p95/p99).
//
// Usage:
//
//	hetload -addr HOST:PORT [flags]
//
//	-addr ADDR         daemon address (host:port or http:// URL; required)
//	-duration D        measured window (default 3s)
//	-concurrency N     closed-loop workers / open-loop in-flight bound (default 8)
//	-rate R            open-loop arrivals per second (0 = closed loop)
//	-cold F            fraction of requests with never-seen keys (default 0.1)
//	-workload NAME     trace workload the jobs summarise (default barnes)
//	-instr N           per-job instruction budget (default 2000)
//	-seed N            request-stream seed (default 1)
//	-timeout D         per-request timeout (default 30s)
//	-o FILE            write the BENCH_load.json record (default none)
//	-history FILE      append the record to this BENCH_history.jsonl
//
// A human summary goes to stdout; -o writes the machine-readable
// LoadRecord, which `hetcore diff` compares direction-aware against a
// baseline (throughput higher-better, latency quantiles and error rate
// lower-better). scripts/ci.sh uses exactly that pair as its load gate.
// -history feeds the `hetcore trend` gate instead: each run appends one
// JSONL entry and trend compares the newest against the median of its
// predecessors.
//
// Hot keys are warmed through the daemon before the window starts, so
// the cached stream measures the serving path, not cold-start noise;
// cold keys use a dedicated far-away seed range and never collide with
// real experiment keys. Exit status: 0 on success, 1 when the run could
// not execute, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hetcore/internal/dist"
	"hetcore/internal/harness"
)

func main() {
	fs := flag.NewFlagSet("hetload", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address (host:port or http:// URL; required)")
	duration := fs.Duration("duration", 3*time.Second, "measured window")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers / open-loop in-flight bound")
	rate := fs.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
	cold := fs.Float64("cold", 0.1, "fraction of requests with never-seen keys")
	workload := fs.String("workload", "barnes", "trace workload the jobs summarise")
	instr := fs.Uint64("instr", 2000, "per-job instruction budget")
	seed := fs.Int64("seed", 1, "request-stream seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	out := fs.String("o", "", "write the BENCH_load.json record to this file")
	history := fs.String("history", "", "append the record to this BENCH_history.jsonl")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "hetload: -addr is required")
		fs.Usage()
		os.Exit(2)
	}

	rec, err := dist.RunLoad(dist.LoadConfig{
		Addr:         *addr,
		Duration:     *duration,
		Concurrency:  *concurrency,
		RatePerSec:   *rate,
		ColdFraction: *cold,
		Workload:     *workload,
		Instr:        *instr,
		Seed:         *seed,
		Timeout:      *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetload:", err)
		os.Exit(1)
	}
	if err := rec.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetload:", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetload:", err)
			os.Exit(1)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "hetload:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hetload:", err)
			os.Exit(1)
		}
	}
	if *history != "" {
		entry := harness.NewLoadHistoryEntry(rec, time.Now().Unix())
		if err := harness.AppendHistory(*history, entry); err != nil {
			fmt.Fprintln(os.Stderr, "hetload:", err)
			os.Exit(1)
		}
	}
}
