// Command hetrace inspects and snapshots the synthetic workload traces.
//
// Usage:
//
//	hetrace stats -workload barnes [-n 200000] [-seed S] [-core C]
//	hetrace stats -workload barnes,radix,canneal [-jobs N]
//	hetrace dump  -workload barnes -o barnes.trc [-n 200000]
//	hetrace stats -in barnes.trc
//
// "dump" serialises a workload to the compact binary trace format;
// "stats" summarises either a live workload or a trace file: instruction
// mix, branch behaviour, dependency structure and data footprint — the
// quantities the profiles in internal/trace are calibrated against.
// -workload accepts a comma-separated list; the summaries are computed
// concurrently on the engine worker pool (-jobs) and printed in the
// order given.
//
// The shared observability flags (-metrics-out, -cpuprofile,
// -memprofile) profile trace generation itself — useful when synthesising
// large dumps.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetcore/internal/engine"
	"hetcore/internal/harness"
	"hetcore/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = stats(os.Args[2:])
	case "dump":
		err = dump(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `hetrace - workload trace inspection

  hetrace stats -workload <name>[,<name>...] [-n N] [-seed S] [-core C] [-jobs N]
  hetrace stats -in <file.trc>
  hetrace dump  -workload <name> -o <file.trc> [-n N] [-seed S] [-core C]

Shared observability flags: -metrics-out, -trace-out, -progress,
-serve, -cpuprofile, -memprofile.
`)
}

func commonFlags(fs *flag.FlagSet) (*string, *uint64, *uint64, *int, *harness.ObsFlags) {
	workload := fs.String("workload", "", "CPU workload name")
	n := fs.Uint64("n", 200_000, "instructions")
	seed := fs.Uint64("seed", 1, "synthesis seed")
	core := fs.Int("core", 0, "core ID")
	ob := harness.AddObsFlags(fs)
	return workload, n, seed, core, ob
}

// publishSummary mirrors a trace summary into the metrics registry so
// -metrics-out captures what was inspected.
func publishSummary(sess *harness.ObsSession, s trace.Summary) {
	reg := sess.Obs.Reg()
	if reg == nil {
		return
	}
	reg.Counter("trace.instructions").Add(s.Instructions)
	reg.Counter("trace.mem_ops").Add(s.MemOps)
	reg.Gauge("trace.taken_rate").Set(s.TakenRate())
	reg.Gauge("trace.mean_dep_dist").Set(s.MeanDep1())
	reg.Gauge("trace.working_set_bytes").Set(float64(s.WorkingSetBytes()))
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	workload, n, seed, core, ob := commonFlags(fs)
	in := fs.String("in", "", "trace file to read instead of a live workload")
	var jobs int
	harness.AddJobsFlag(fs, &jobs)
	df := harness.AddDistFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Seed = *seed
	sess.Experiments = []string{"trace-stats"}
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		s := trace.Summarize(r, r.Remaining())
		if r.Err() != nil {
			return r.Err()
		}
		printSummary(s)
		publishSummary(sess, s)
	case *workload != "":
		// One summary job per workload, fanned out on the engine pool and
		// printed in the order given on the command line.
		names := strings.Split(*workload, ",")
		eng, err := harness.NewEngine(jobs, df.CacheDir, df.RemoteList(), sess.Obs)
		if err != nil {
			return err
		}
		sess.Engine = eng
		plan := make([]engine.Job, len(names))
		for i, name := range names {
			p, err := trace.CPUWorkload(name)
			if err != nil {
				return err
			}
			plan[i] = engine.Job{
				Key: engine.Key{Device: "trace", Config: "stats", Workload: p.Name,
					Seed: *seed, Instr: *n, Variant: fmt.Sprintf("core=%d", *core)},
				Run: func() (any, error) {
					g, err := trace.NewGenerator(p, *seed, *core)
					if err != nil {
						return nil, err
					}
					return trace.Summarize(g, *n), nil
				},
			}
		}
		outs, err := eng.RunAll(plan)
		if err != nil {
			return err
		}
		for i, out := range outs {
			s := out.(trace.Summary)
			if len(names) > 1 {
				fmt.Printf("== %s ==\n", names[i])
			}
			printSummary(s)
			publishSummary(sess, s)
		}
	default:
		return fmt.Errorf("stats needs -workload or -in")
	}
	return sess.Close()
}

func printSummary(s trace.Summary) {
	fmt.Printf("instructions   %d\n", s.Instructions)
	names := []string{"alu", "mul", "div", "fadd", "fmul", "fdiv", "ld", "st", "br"}
	for i, name := range names {
		c := s.OpCounts[i]
		fmt.Printf("  %-5s %9d  (%.1f%%)\n", name, c, 100*float64(c)/float64(s.Instructions))
	}
	fmt.Printf("branches taken %.1f%%\n", s.TakenRate()*100)
	fmt.Printf("mean dep dist  %.2f\n", s.MeanDep1())
	fmt.Printf("two-source     %.1f%%\n", 100*float64(s.Dep2Count)/float64(s.Instructions))
	fmt.Printf("shared mem ops %.2f%%\n", 100*float64(s.SharedOps)/float64(s.MemOps))
	fmt.Printf("data footprint %.1f KB\n", float64(s.WorkingSetBytes())/1024)
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	workload, n, seed, core, ob := commonFlags(fs)
	out := fs.String("o", "", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" || *out == "" {
		return fmt.Errorf("dump needs -workload and -o")
	}
	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Seed = *seed
	sess.Experiments = []string{"trace-dump"}
	p, err := trace.CPUWorkload(*workload)
	if err != nil {
		return err
	}
	g, err := trace.NewGenerator(p, *seed, *core)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTrace(f, g, *n); err != nil {
		return err
	}
	if reg := sess.Obs.Reg(); reg != nil {
		reg.Counter("trace.instructions").Add(*n)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, *workload, *out)
	return sess.Close()
}
