// Command hetsweep runs parameter sensitivity sweeps around the AdvHet
// design point — the knobs DESIGN.md calls out as design decisions:
//
//	fastsize    asymmetric-DL1 CMOS way capacity (KB)
//	steerwindow dual-speed ALU steering lookahead (instructions)
//	rfentries   GPU register-file-cache entries per thread
//	waves       GPU resident wavefronts per CU
//	prefetch    next-line prefetcher on/off
//
// Usage:
//
//	hetsweep -sweep fastsize [-workload barnes] [-instr N] [-seed S]
//	hetsweep -sweep rfentries [-kernel Reduction]
//
// Each row reports time, energy and ED² normalised to the default AdvHet
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetcore/internal/gpu"
	"hetcore/internal/hetsim"
	"hetcore/internal/trace"
)

func main() {
	sweep := flag.String("sweep", "", "fastsize | steerwindow | rfentries | waves | prefetch")
	workload := flag.String("workload", "barnes", "CPU workload for CPU sweeps")
	kernel := flag.String("kernel", "Reduction", "GPU kernel for GPU sweeps")
	instr := flag.Uint64("instr", 250_000, "total instructions per CPU run")
	seed := flag.Uint64("seed", 1, "workload synthesis seed")
	flag.Parse()

	var err error
	switch *sweep {
	case "fastsize":
		err = sweepFastSize(*workload, *instr, *seed)
	case "steerwindow":
		err = sweepSteerWindow(*workload, *instr, *seed)
	case "prefetch":
		err = sweepPrefetch(*workload, *instr, *seed)
	case "rfentries":
		err = sweepRFEntries(*kernel, *seed)
	case "waves":
		err = sweepWaves(*kernel, *seed)
	case "":
		flag.Usage()
		os.Exit(2)
	default:
		err = fmt.Errorf("unknown sweep %q", *sweep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetsweep:", err)
		os.Exit(1)
	}
}

type row struct {
	label             string
	time, energy, ed2 float64
}

func printRows(title string, rows []row) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("%-16s %8s %8s %8s\n", "value", "time", "energy", "ED2")
	base := rows[0]
	for _, r := range rows {
		fmt.Printf("%-16s %8.3f %8.3f %8.3f\n",
			r.label, r.time/base.time, r.energy/base.energy, r.ed2/base.ed2)
	}
	fmt.Println("-- normalised to the first row")
}

func runCPUVariant(cfg hetsim.CPUConfig, workload string, instr, seed uint64) (row, error) {
	prof, err := trace.CPUWorkload(workload)
	if err != nil {
		return row{}, err
	}
	r, err := hetsim.RunCPU(cfg, prof, hetsim.RunOpts{TotalInstructions: instr, Seed: seed})
	if err != nil {
		return row{}, err
	}
	return row{time: r.TimeSec, energy: r.Energy.Total(), ed2: r.ED2()}, nil
}

func sweepFastSize(workload string, instr, seed uint64) error {
	// The FastCache is one way's worth of the DL1, so its capacity is
	// swept by changing the associativity: 16-way -> 2 KB fast way,
	// 8-way -> 4 KB (default), 4-way -> 8 KB, 2-way -> 16 KB.
	var rows []row
	for _, ways := range []int{8, 16, 4, 2} { // default first
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Hier.DL1Ways = ways
		cfg.Hier.FastSize = cfg.Hier.DL1Size / ways
		r, err := runCPUVariant(cfg, workload, instr, seed)
		if err != nil {
			return err
		}
		r.label = fmt.Sprintf("fast=%dKB/%dway", cfg.Hier.FastSize/1024, ways)
		rows = append(rows, r)
	}
	printRows(fmt.Sprintf("AdvHet asymmetric-DL1 fast-way size (%s)", workload), rows)
	return nil
}

func sweepSteerWindow(workload string, instr, seed uint64) error {
	var rows []row
	for _, w := range []int{4, 1, 2, 8} { // default (issue width) first
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Core.SteerWindow = w
		r, err := runCPUVariant(cfg, workload, instr, seed)
		if err != nil {
			return err
		}
		r.label = fmt.Sprintf("window=%d", w)
		rows = append(rows, r)
	}
	printRows(fmt.Sprintf("AdvHet dual-speed ALU steering window (%s)", workload), rows)
	return nil
}

func sweepPrefetch(workload string, instr, seed uint64) error {
	var rows []row
	for _, on := range []bool{true, false} {
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Hier.NextLinePrefetch = on
		r, err := runCPUVariant(cfg, workload, instr, seed)
		if err != nil {
			return err
		}
		r.label = fmt.Sprintf("prefetch=%v", on)
		rows = append(rows, r)
	}
	printRows(fmt.Sprintf("Next-line prefetcher (%s)", workload), rows)
	return nil
}

func runGPUVariant(cfg hetsim.GPUConfig, kernel string, seed uint64) (row, error) {
	k, err := gpu.KernelByName(kernel)
	if err != nil {
		return row{}, err
	}
	r, err := hetsim.RunGPU(cfg, k, seed)
	if err != nil {
		return row{}, err
	}
	return row{time: r.TimeSec, energy: r.Energy.Total(), ed2: r.ED2()}, nil
}

func sweepRFEntries(kernel string, seed uint64) error {
	var rows []row
	for _, n := range []int{6, 2, 4, 8, 12} { // default first
		cfg, err := hetsim.GPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Dev.RFCacheEntries = n
		r, err := runGPUVariant(cfg, kernel, seed)
		if err != nil {
			return err
		}
		r.label = fmt.Sprintf("entries=%d", n)
		rows = append(rows, r)
	}
	printRows(fmt.Sprintf("AdvHet GPU RF-cache entries per thread (%s)", kernel), rows)
	return nil
}

func sweepWaves(kernel string, seed uint64) error {
	var rows []row
	for _, n := range []int{6, 2, 4, 10, 16} { // default first
		cfg, err := hetsim.GPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Dev.MaxWavesPerCU = n
		r, err := runGPUVariant(cfg, kernel, seed)
		if err != nil {
			return err
		}
		r.label = fmt.Sprintf("waves=%d", n)
		rows = append(rows, r)
	}
	printRows(fmt.Sprintf("GPU resident wavefronts per CU (%s)", kernel), rows)
	return nil
}
