// Command hetsweep runs parameter sensitivity sweeps around the AdvHet
// design point — the knobs DESIGN.md calls out as design decisions:
//
//	fastsize    asymmetric-DL1 CMOS way capacity (KB)
//	steerwindow dual-speed ALU steering lookahead (instructions)
//	rfentries   GPU register-file-cache entries per thread
//	waves       GPU resident wavefronts per CU
//	prefetch    next-line prefetcher on/off
//
// Usage:
//
//	hetsweep -sweep fastsize [-workload barnes] [-instr N] [-seed S] [-jobs N]
//	hetsweep -sweep rfentries [-kernel Reduction]
//
// Each sweep is declared as a run plan and executed on the engine worker
// pool (-jobs, default NumCPU); rows always print in declared order, so
// the output is identical for any -jobs value. Each row reports time,
// energy and ED² normalised to the default AdvHet configuration. The
// shared observability flags (-metrics-out, -trace-out, -progress,
// -serve, -cpuprofile, -memprofile) record every variant run; -serve
// addr exposes the live telemetry dashboard while the sweep runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetcore/internal/engine"
	"hetcore/internal/gpu"
	"hetcore/internal/harness"
	"hetcore/internal/hetsim"
	"hetcore/internal/obs"
	"hetcore/internal/trace"
)

// env carries the sweep inputs plus the run-plan engine and the
// observability session.
type env struct {
	workload string
	kernel   string
	instr    uint64
	seed     uint64
	o        *obs.Observer
	eng      *engine.Engine
}

func main() {
	fs := flag.NewFlagSet("hetsweep", flag.ExitOnError)
	sweep := fs.String("sweep", "", "fastsize | steerwindow | rfentries | waves | prefetch")
	workload := fs.String("workload", "barnes", "CPU workload for CPU sweeps")
	kernel := fs.String("kernel", "Reduction", "GPU kernel for GPU sweeps")
	instr := fs.Uint64("instr", 250_000, "total instructions per CPU run")
	seed := fs.Uint64("seed", 1, "workload synthesis seed")
	var jobs int
	harness.AddJobsFlag(fs, &jobs)
	df := harness.AddDistFlags(fs)
	ob := harness.AddObsFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	sess, err := ob.Start(os.Args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetsweep:", err)
		os.Exit(1)
	}
	sess.Seed = *seed
	sess.Experiments = []string{"sweep-" + *sweep}
	sess.Obs.SetPhase("sweep-" + *sweep)
	// Sweep keys carry a Variant, so they always execute locally even
	// with -remote set; -cache-dir still persists them across runs.
	eng, err := harness.NewEngine(jobs, df.CacheDir, df.RemoteList(), sess.Obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetsweep:", err)
		os.Exit(1)
	}
	sess.Engine = eng
	e := env{workload: *workload, kernel: *kernel, instr: *instr, seed: *seed,
		o: sess.Obs, eng: eng}

	switch *sweep {
	case "fastsize":
		err = sweepFastSize(e)
	case "steerwindow":
		err = sweepSteerWindow(e)
	case "prefetch":
		err = sweepPrefetch(e)
	case "rfentries":
		err = sweepRFEntries(e)
	case "waves":
		err = sweepWaves(e)
	case "":
		fs.Usage()
		os.Exit(2)
	default:
		err = fmt.Errorf("unknown sweep %q", *sweep)
	}
	if err == nil {
		err = sess.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetsweep:", err)
		os.Exit(1)
	}
}

type row struct {
	label             string
	time, energy, ed2 float64
}

func printRows(title string, rows []row) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("%-16s %8s %8s %8s\n", "value", "time", "energy", "ED2")
	base := rows[0]
	for _, r := range rows {
		fmt.Printf("%-16s %8.3f %8.3f %8.3f\n",
			r.label, r.time/base.time, r.energy/base.energy, r.ed2/base.ed2)
	}
	fmt.Println("-- normalised to the first row")
}

// cpuVariant is one row of a CPU sweep: a label and the mutated config.
type cpuVariant struct {
	label string
	cfg   hetsim.CPUConfig
}

// runCPUSweep executes the variants as one plan on the engine pool and
// prints the rows in declared order.
func runCPUSweep(e env, title string, variants []cpuVariant) error {
	prof, err := trace.CPUWorkload(e.workload)
	if err != nil {
		return err
	}
	jobs := make([]engine.Job, len(variants))
	for i, v := range variants {
		cfg := v.cfg
		jobs[i] = engine.Job{
			Key: engine.Key{Device: "cpu", Config: cfg.Name, Workload: prof.Name,
				Seed: e.seed, Instr: e.instr, Variant: "sweep:" + v.label},
			Run: func() (any, error) {
				return hetsim.RunCPU(cfg, prof, hetsim.RunOpts{
					TotalInstructions: e.instr, Seed: e.seed, Obs: e.o})
			},
		}
	}
	outs, err := e.eng.RunAll(jobs)
	if err != nil {
		return err
	}
	rows := make([]row, len(variants))
	for i, v := range variants {
		r := outs[i].(hetsim.CPUResult)
		rows[i] = row{label: v.label, time: r.TimeSec, energy: r.Energy.Total(), ed2: r.ED2()}
	}
	printRows(title, rows)
	return nil
}

func sweepFastSize(e env) error {
	// The FastCache is one way's worth of the DL1, so its capacity is
	// swept by changing the associativity: 16-way -> 2 KB fast way,
	// 8-way -> 4 KB (default), 4-way -> 8 KB, 2-way -> 16 KB.
	var variants []cpuVariant
	for _, ways := range []int{8, 16, 4, 2} { // default first
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Hier.DL1Ways = ways
		cfg.Hier.FastSize = cfg.Hier.DL1Size / ways
		variants = append(variants, cpuVariant{
			label: fmt.Sprintf("fast=%dKB/%dway", cfg.Hier.FastSize/1024, ways),
			cfg:   cfg,
		})
	}
	return runCPUSweep(e, fmt.Sprintf("AdvHet asymmetric-DL1 fast-way size (%s)", e.workload), variants)
}

func sweepSteerWindow(e env) error {
	var variants []cpuVariant
	for _, w := range []int{4, 1, 2, 8} { // default (issue width) first
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Core.SteerWindow = w
		variants = append(variants, cpuVariant{label: fmt.Sprintf("window=%d", w), cfg: cfg})
	}
	return runCPUSweep(e, fmt.Sprintf("AdvHet dual-speed ALU steering window (%s)", e.workload), variants)
}

func sweepPrefetch(e env) error {
	var variants []cpuVariant
	for _, on := range []bool{true, false} {
		cfg, err := hetsim.CPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Hier.NextLinePrefetch = on
		variants = append(variants, cpuVariant{label: fmt.Sprintf("prefetch=%v", on), cfg: cfg})
	}
	return runCPUSweep(e, fmt.Sprintf("Next-line prefetcher (%s)", e.workload), variants)
}

// gpuVariant is one row of a GPU sweep.
type gpuVariant struct {
	label string
	cfg   hetsim.GPUConfig
}

// runGPUSweep executes the variants as one plan on the engine pool and
// prints the rows in declared order.
func runGPUSweep(e env, title string, variants []gpuVariant) error {
	k, err := gpu.KernelByName(e.kernel)
	if err != nil {
		return err
	}
	jobs := make([]engine.Job, len(variants))
	for i, v := range variants {
		cfg := v.cfg
		jobs[i] = engine.Job{
			Key: engine.Key{Device: "gpu", Config: cfg.Name, Workload: k.Name,
				Seed: e.seed, Variant: "sweep:" + v.label},
			Run: func() (any, error) {
				return hetsim.RunGPUObserved(cfg, k, e.seed, e.o)
			},
		}
	}
	outs, err := e.eng.RunAll(jobs)
	if err != nil {
		return err
	}
	rows := make([]row, len(variants))
	for i, v := range variants {
		r := outs[i].(hetsim.GPUResult)
		rows[i] = row{label: v.label, time: r.TimeSec, energy: r.Energy.Total(), ed2: r.ED2()}
	}
	printRows(title, rows)
	return nil
}

func sweepRFEntries(e env) error {
	var variants []gpuVariant
	for _, n := range []int{6, 2, 4, 8, 12} { // default first
		cfg, err := hetsim.GPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Dev.RFCacheEntries = n
		variants = append(variants, gpuVariant{label: fmt.Sprintf("entries=%d", n), cfg: cfg})
	}
	return runGPUSweep(e, fmt.Sprintf("AdvHet GPU RF-cache entries per thread (%s)", e.kernel), variants)
}

func sweepWaves(e env) error {
	var variants []gpuVariant
	for _, n := range []int{6, 2, 4, 10, 16} { // default first
		cfg, err := hetsim.GPUConfigByName("AdvHet")
		if err != nil {
			return err
		}
		cfg.Dev.MaxWavesPerCU = n
		variants = append(variants, gpuVariant{label: fmt.Sprintf("waves=%d", n), cfg: cfg})
	}
	return runGPUSweep(e, fmt.Sprintf("GPU resident wavefronts per CU (%s)", e.kernel), variants)
}
