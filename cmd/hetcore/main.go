// Command hetcore reproduces the tables and figures of "HetCore:
// TFET-CMOS Hetero-Device Architecture for CPUs and GPUs" (ISCA 2018).
//
// Usage:
//
//	hetcore list
//	hetcore run -exp fig7 [-instr N] [-seed S] [-workloads a,b] [-kernels X,Y] [-csv]
//	hetcore all [-instr N] [-seed S] [-csv]
//
// "run" executes one experiment; "all" executes the full evaluation in
// paper order. Figures 7-9 and 13-14 simulate the 14 CPU workloads on
// every configuration, so expect tens of seconds at the default
// instruction budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetcore/internal/harness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(os.Args[2:])
	case "all":
		err = all(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hetcore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetcore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `hetcore - HetCore (ISCA 2018) reproduction harness

Commands:
  list                 list all experiments
  run -exp <id> [...]  run one experiment (e.g. fig7, table1)
  all [...]            run every experiment in paper order

Flags for run/all:
  -instr N             total instructions per CPU run (default 400000)
  -seed S              workload synthesis seed (default 1)
  -workloads a,b,c     restrict CPU workloads
  -kernels X,Y         restrict GPU kernels
  -csv                 emit CSV instead of aligned text
`)
}

func commonFlags(fs *flag.FlagSet) (*uint64, *uint64, *string, *string, *bool) {
	instr := fs.Uint64("instr", 0, "total instructions per CPU run")
	seed := fs.Uint64("seed", 1, "workload synthesis seed")
	workloads := fs.String("workloads", "", "comma-separated CPU workload subset")
	kernels := fs.String("kernels", "", "comma-separated GPU kernel subset")
	csv := fs.Bool("csv", false, "emit CSV")
	return instr, seed, workloads, kernels, csv
}

// emit writes a table in the selected format.
func emit(t harness.Table, csv, js bool) error {
	switch {
	case js:
		return t.JSON(os.Stdout)
	case csv:
		return t.CSV(os.Stdout)
	default:
		return t.Format(os.Stdout)
	}
}

func buildOptions(instr, seed uint64, workloads, kernels string) harness.Options {
	opts := harness.Options{Instructions: instr, Seed: seed}
	if workloads != "" {
		opts.Workloads = strings.Split(workloads, ",")
	}
	if kernels != "" {
		opts.Kernels = strings.Split(kernels, ",")
	}
	return opts
}

func list() error {
	for _, e := range harness.Experiments() {
		fmt.Printf("%-8s %-12s %s\n", e.ID, "("+e.PaperRef+")", e.Title)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment ID (see 'hetcore list')")
	instr, seed, workloads, kernels, csv := commonFlags(fs)
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("run requires -exp (see 'hetcore list')")
	}
	e, err := harness.ByID(*exp)
	if err != nil {
		return err
	}
	t, err := e.Run(buildOptions(*instr, *seed, *workloads, *kernels))
	if err != nil {
		return err
	}
	return emit(t, *csv, *js)
}

func all(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	instr, seed, workloads, kernels, csv := commonFlags(fs)
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := buildOptions(*instr, *seed, *workloads, *kernels)
	for _, e := range harness.Experiments() {
		t, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv || *js {
			fmt.Printf("# %s (%s)\n", e.ID, e.PaperRef)
		}
		if err := emit(t, *csv, *js); err != nil {
			return err
		}
		if *csv || *js {
			fmt.Println()
		}
	}
	return nil
}
