// Command hetcore reproduces the tables and figures of "HetCore:
// TFET-CMOS Hetero-Device Architecture for CPUs and GPUs" (ISCA 2018).
//
// Usage:
//
//	hetcore list
//	hetcore run -exp fig7 [-instr N] [-seed S] [-workloads a,b] [-kernels X,Y] [-csv]
//	hetcore all [-instr N] [-seed S] [-csv]
//	hetcore soc [-budget-w W] [-budget-mm2 A] [-breakdown] [-accel] [...]
//	hetcore traffic [-trace T] [-policy P] [-config C] [-slo-ms MS] [-budget-w W] [-o F]
//	hetcore bench [-instr N] [-o BENCH_sim_rate.json] [-history F]
//	hetcore hotspots [-device cpu|gpu] [-config C] [-workload W] [-o F]
//	hetcore trend [-history F] [-window N] [-tol PCT] [-rate-tol PCT]
//	hetcore diff [-tol PCT] [-rate-tol PCT] old.json new.json
//	hetcore version
//
// "run" executes one experiment; "all" executes the full evaluation in
// paper order; "soc" searches every CMOS-core/TFET-core/GPU-CU/
// accelerator mix that fits an area/power budget and prints the Pareto
// front (time vs energy; -accel adds the class-best comparison of
// cores vs GPU vs CMOS/TFET accelerators); "traffic" steps a core mix
// through a diurnal/bursty/flat request trace under pluggable wake/
// sleep + DVFS scheduling policies and reports energy per request and
// latency quantiles against the SLO; "bench" measures the
// simulation rate of this host (and with
// -history appends the record to a BENCH_history.jsonl trend file);
// "hotspots" runs one workload under CPU+heap profile plus the in-sim
// stage-cost sampler and prints where the simulator's own wall-time and
// allocations go (schema hetcore.prof/v1 with -o/-json);
// "trend" compares the newest BENCH_history.jsonl entries against the
// median of their predecessors and exits non-zero on a regression;
// "diff" compares two -metrics-out reports, two bench records or two
// hetload BENCH_load.json records and exits non-zero when a metric
// regressed beyond its threshold;
// "version" prints the internal/dist cache/wire compatibility stamp.
// -cache-dir makes every simulated point persistent (content-addressed
// under SHA-256 of the engine key plus the version stamp), so repeated
// invocations and CI reruns skip simulation entirely; -remote fans jobs
// out to hetserved daemons as extra engine lanes with transparent local
// fallback. Both preserve byte-identical output.
// Figures 7-9 and 13-14 simulate the 14 CPU workloads on every
// configuration, so expect tens of seconds at the default instruction
// budget.
//
// Observability (run/all): -metrics-out writes a JSON report with a
// manifest, a metrics snapshot and one structured record per simulation
// run (including the top-down cycle attribution); -trace-out writes a
// Chrome trace loadable in ui.perfetto.dev; -progress prints heartbeat
// lines to stderr; -serve starts the live telemetry dashboard (HTML,
// /metrics.json, /metrics Prometheus text, /series, /events) on the
// given address for the duration of the run; -cpuprofile/-memprofile
// write pprof profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hetcore/internal/dist"
	"hetcore/internal/harness"
	"hetcore/internal/obs"
	"hetcore/internal/soc"
	"hetcore/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(os.Args[2:])
	case "all":
		err = all(os.Args[2:])
	case "soc":
		err = socCmd(os.Args[2:])
	case "traffic":
		err = trafficCmd(os.Args[2:])
	case "bench":
		err = bench(os.Args[2:])
	case "hotspots":
		err = hotspots(os.Args[2:])
	case "trend":
		err = trend(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "version":
		version()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hetcore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetcore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `hetcore - HetCore (ISCA 2018) reproduction harness

Commands:
  list                 list all experiments
  run -exp <id> [...]  run one experiment (e.g. fig7, table1)
  all [...]            run every experiment in paper order
  soc [...]            budgeted SoC design-space search (Pareto front)
  traffic [...]        diurnal traffic scenarios: mixes x scheduling policies
  bench [...]          measure this host's simulation rate
  hotspots [...]       profile one workload: stage attribution + top functions
  trend [...]          gate the newest BENCH_history.jsonl entries on their history
  diff old new         compare two reports/bench/load records, exit 1 on regression
  version              print the cache/wire version stamp

Flags for run/all:
  -instr N             total instructions per CPU run (default 400000)
  -seed S              workload synthesis seed (default 1)
  -workloads a,b,c     restrict CPU workloads
  -kernels X,Y         restrict GPU kernels
  -jobs N              concurrent simulation jobs (0 = NumCPU); output is
                       byte-identical for any value
  -cache-dir D         persistent result cache; a repeated invocation
                       simulates nothing and produces identical output
  -remote H:P,...      hetserved workers used as extra engine lanes (with
                       local fallback); output stays byte-identical
  -csv                 emit CSV instead of aligned text
  -json                emit JSON
  -metrics-out F       write metrics + run-record report JSON
  -trace-out F         write Chrome trace JSON (open in ui.perfetto.dev)
  -progress            print progress heartbeats to stderr
  -serve ADDR          serve the live telemetry dashboard (e.g. :8090)
  -cpuprofile F        write pprof CPU profile
  -memprofile F        write pprof heap profile
  -stage-prof          sample host wall-time/alloc attribution per simulated
                       pipeline stage (report manifest, registry and dashboard)

Flags for soc (plus all run/all flags above):
  -budget-w W          SoC power budget in watts (default 20)
  -budget-mm2 A        SoC area budget in mm^2 (default 50)
  -breakdown           also print the per-workload time/energy breakdown
                       of every Pareto-front mix
  -accel               also print the class-best comparison (cores-only vs
                       GPU-only vs CMOS/TFET accelerator mixes, by ED²)

Flags for traffic (plus all run/all flags above):
  -trace T             synthetic trace (diurnal, bursty, flat) or a
                       .csv/.jsonl trace file (epoch_sec,rps rows)
  -policy P,Q          restrict scheduling policies (naive, util, cacheaware)
  -config M,N          core mixes to serve the trace (default c4t4g0,c8t0g0)
  -slo-ms MS           latency SLO in milliseconds (default 50)
  -budget-w W          chip power budget in watts (default uncapped)
  -req-instr N         instructions per request (default 2000000)
  -o F                 write the hetcore.traffic/v1 report JSON here
  -history F           append the report to this BENCH_history.jsonl

Flags for bench:
  -instr N             CPU instruction budget (default 2000000)
  -seed S              workload synthesis seed
  -jobs N              worker-pool width for the full-suite measurement
  -o F                 output file (default BENCH_sim_rate.json)
  -history F           also append the record to this BENCH_history.jsonl

Flags for hotspots:
  -device cpu|gpu      simulator to profile (default cpu)
  -config C            architecture configuration (default BaseCMOS)
  -workload W          CPU workload / GPU kernel (default barnes / MatrixMultiplication)
  -instr N             CPU instruction budget (default 2000000)
  -seed S              workload synthesis seed
  -top N               table depth (default 10)
  -o F                 write the hetcore.prof/v1 report JSON here
  -json                print the report JSON to stdout instead of the table

Flags for trend:
  -history F           history file (default BENCH_history.jsonl)
  -window N            compare against the median of the last N prior entries (0 = all)
  -tol PCT             tolerance for deterministic metrics, percent (default 0.1)
  -rate-tol PCT        tolerance for host-timing metrics, percent (default 25)
  -q                   only print regressions and the verdict

Flags for diff:
  -tol PCT             tolerance for deterministic metrics, percent (default 0.1)
  -rate-tol PCT        tolerance for host-timing metrics, percent (default 25)
  -q                   only print regressions and the verdict
`)
}

// emit writes a table in the selected format.
func emit(t harness.Table, csv, js bool) error {
	switch {
	case js:
		return t.JSON(os.Stdout)
	case csv:
		return t.CSV(os.Stdout)
	default:
		return t.Format(os.Stdout)
	}
}

// version prints the identifiers that govern cache and wire
// compatibility. The first line is the dist stamp folded into every
// persistent cache entry and checked against every -remote worker: two
// builds with different stamps never share results, so stale caches
// self-invalidate on any code or device-table change.
func version() {
	fmt.Println(dist.Stamp())
	fmt.Printf("  cache schema:      v%d\n", dist.CacheVersion)
	fmt.Printf("  device-table hash: %s\n", dist.DeviceTableHash())
	fmt.Printf("  report schema:     %s\n", obs.SchemaVersion)
	fmt.Printf("  go:                %s\n", runtime.Version())
}

func list() error {
	for _, e := range harness.Experiments() {
		fmt.Printf("%-10s %-14s %s\n", e.ID, "("+e.PaperRef+")", e.Title)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment ID (see 'hetcore list')")
	sim := harness.AddSimFlags(fs)
	ob := harness.AddObsFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV")
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("run requires -exp (see 'hetcore list')")
	}
	e, err := harness.ByID(*exp)
	if err != nil {
		return err
	}
	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Experiments = []string{e.ID}
	sess.Seed = sim.Seed
	opts := sim.Options()
	opts.Obs = sess.Obs
	opts, err = opts.WithSharedEngine()
	if err != nil {
		return err
	}
	sess.Engine = opts.Engine
	t, err := harness.RunExperiment(e, opts)
	if err != nil {
		return err
	}
	if err := emit(t, *csv, *js); err != nil {
		return err
	}
	return sess.Close()
}

func all(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	sim := harness.AddSimFlags(fs)
	ob := harness.AddObsFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV")
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Seed = sim.Seed
	opts := sim.Options()
	opts.Obs = sess.Obs
	// One engine for the whole evaluation: figures sharing a simulation
	// matrix (fig7/8/9, fig10/11/12, cycles...) simulate it once.
	opts, err = opts.WithSharedEngine()
	if err != nil {
		return err
	}
	sess.Engine = opts.Engine
	for _, e := range harness.Experiments() {
		sess.Experiments = append(sess.Experiments, e.ID)
		t, err := harness.RunExperiment(e, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv || *js {
			fmt.Printf("# %s (%s)\n", e.ID, e.PaperRef)
		}
		if err := emit(t, *csv, *js); err != nil {
			return err
		}
		if *csv || *js {
			fmt.Println()
		}
	}
	return sess.Close()
}

// socCmd runs the budgeted SoC design-space search: every CMOS/TFET
// core + GPU CU mix that fits the budget is evaluated over the paired
// workloads (through the shared engine, so the component simulations
// and compositions cache like any other experiment) and the Pareto
// front on (time, energy) is printed.
func socCmd(args []string) error {
	fs := flag.NewFlagSet("soc", flag.ExitOnError)
	budgetW := fs.Float64("budget-w", 0, "power budget in watts (0 = default 20)")
	budgetMM2 := fs.Float64("budget-mm2", 0, "area budget in mm^2 (0 = default 50)")
	breakdown := fs.Bool("breakdown", false, "also print the per-workload breakdown of Pareto mixes")
	accel := fs.Bool("accel", false, "also print the class-best comparison (cores vs GPU vs accelerators)")
	sim := harness.AddSimFlags(fs)
	ob := harness.AddObsFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV")
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget := soc.DefaultBudget()
	if *budgetW != 0 {
		budget.PowerW = *budgetW
	}
	if *budgetMM2 != 0 {
		budget.AreaMM2 = *budgetMM2
	}
	if err := budget.Validate(); err != nil {
		return err
	}
	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Experiments = []string{"soc"}
	sess.Seed = sim.Seed
	opts := sim.Options()
	opts.Obs = sess.Obs
	opts, err = opts.WithSharedEngine()
	if err != nil {
		return err
	}
	sess.Engine = opts.Engine
	t, err := harness.SoCPareto(opts, budget)
	if err != nil {
		return err
	}
	if err := emit(t, *csv, *js); err != nil {
		return err
	}
	if *breakdown {
		sess.Experiments = append(sess.Experiments, "socbreak")
		bt, err := harness.SoCBreakdown(opts, budget)
		if err != nil {
			return err
		}
		if !*csv && !*js {
			fmt.Println()
		}
		if err := emit(bt, *csv, *js); err != nil {
			return err
		}
	}
	if *accel {
		sess.Experiments = append(sess.Experiments, "socaccel")
		at, err := harness.SoCAccelCompare(opts, budget)
		if err != nil {
			return err
		}
		if !*csv && !*js {
			fmt.Println()
		}
		if err := emit(at, *csv, *js); err != nil {
			return err
		}
	}
	return sess.Close()
}

// trafficCmd runs the diurnal-service simulation: the scenario matrix
// (core mixes × scheduling policies) steps through the traffic trace,
// one engine job per scenario, and the per-scenario energy/latency/SLO
// accounting is printed (and optionally written as a hetcore.traffic/v1
// report).
func trafficCmd(args []string) error {
	fs := flag.NewFlagSet("traffic", flag.ExitOnError)
	traceFlag := fs.String("trace", "diurnal", "synthetic trace (diurnal, bursty, flat) or a .csv/.jsonl trace file")
	policyFlag := fs.String("policy", "", "comma-separated scheduling policies (default: all)")
	configFlag := fs.String("config", "", "comma-separated core mixes (default: "+strings.Join(traffic.DefaultMixes, ",")+")")
	budgetW := fs.Float64("budget-w", 0, "chip power budget in watts (0 = uncapped)")
	sloMS := fs.Float64("slo-ms", 0, "latency SLO in milliseconds (0 = default 50)")
	reqInstr := fs.Uint64("req-instr", 0, "instructions per request (0 = default 2000000)")
	out := fs.String("o", "", "write the hetcore.traffic/v1 report JSON here")
	history := fs.String("history", "", "append the report to this BENCH_history.jsonl")
	sim := harness.AddSimFlags(fs)
	ob := harness.AddObsFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV")
	js := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, fileTrace, err := traffic.ResolveTrace(*traceFlag)
	if err != nil {
		return err
	}
	policies := traffic.PolicyNames()
	if *policyFlag != "" {
		policies = strings.Split(*policyFlag, ",")
		for _, p := range policies {
			if _, err := traffic.PolicyByName(p); err != nil {
				return err
			}
		}
	}
	mixes := traffic.DefaultMixes
	if *configFlag != "" {
		mixes = strings.Split(*configFlag, ",")
	}
	knobs := harness.TrafficKnobs{SLOSec: *sloMS / 1e3, BudgetW: *budgetW, ReqInstr: *reqInstr}

	sess, err := ob.Start(os.Args)
	if err != nil {
		return err
	}
	sess.Experiments = []string{"traffic"}
	sess.Seed = sim.Seed
	opts := sim.Options()
	opts.Obs = sess.Obs
	opts, err = opts.WithSharedEngine()
	if err != nil {
		return err
	}
	sess.Engine = opts.Engine
	sess.Obs.SetPhase("traffic")
	rep, err := harness.TrafficReport(opts, tr, fileTrace, mixes, policies, knobs)
	if err != nil {
		return err
	}
	t := harness.TrafficTable("traffic",
		fmt.Sprintf("Traffic scenarios on trace %s (%d epochs)", tr.Name, len(tr.RPS)),
		fmt.Sprintf("SLO %.0f ms; energy per request includes leakage of every awake core.", rep.SLOMS),
		rep.Scenarios)
	if err := emit(t, *csv, *js); err != nil {
		return err
	}
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *history != "" {
		entry := harness.NewTrafficHistoryEntry(*rep, runtime.Version(), time.Now().Unix())
		if err := harness.AppendHistory(*history, entry); err != nil {
			return err
		}
		fmt.Printf("appended to %s\n", *history)
	}
	return sess.Close()
}

func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	instr := fs.Uint64("instr", 0, "CPU instruction budget (0 = 2000000)")
	seed := fs.Uint64("seed", 1, "workload synthesis seed")
	out := fs.String("o", "BENCH_sim_rate.json", "output file")
	history := fs.String("history", "", "also append the record to this BENCH_history.jsonl")
	var jobs int
	harness.AddJobsFlag(fs, &jobs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := harness.MeasureSimRate(*instr, *seed, jobs)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *history != "" {
		entry := harness.NewBenchHistoryEntry(rec, time.Now().Unix())
		if err := harness.AppendHistory(*history, entry); err != nil {
			return err
		}
	}
	fmt.Printf("cpu  %12.0f insts/s  (%s, %d insts in %.2fs)\n",
		rec.CPUInstsPerSec, rec.CPUWorkload, rec.CPUInstructions, rec.CPUWallSeconds)
	fmt.Printf("gpu  %12.0f wave-insts/s  (%s, %d insts in %.2fs)\n",
		rec.GPUWaveInstsPerSec, rec.GPUKernel, rec.GPUWaveInsts, rec.GPUWallSeconds)
	fmt.Printf("wrote %s\n", *out)
	if *history != "" {
		fmt.Printf("appended to %s\n", *history)
	}
	return nil
}

// hotspots profiles one workload run: CPU + heap pprof plus the in-sim
// stage-cost sampler, reported as a table or hetcore.prof/v1 JSON.
func hotspots(args []string) error {
	fs := flag.NewFlagSet("hotspots", flag.ExitOnError)
	device := fs.String("device", "cpu", "simulator to profile: cpu or gpu")
	config := fs.String("config", "BaseCMOS", "architecture configuration")
	workload := fs.String("workload", "", "CPU workload / GPU kernel (default barnes / MatrixMultiplication)")
	instr := fs.Uint64("instr", 0, "CPU instruction budget (0 = 2000000)")
	seed := fs.Uint64("seed", 1, "workload synthesis seed")
	top := fs.Int("top", 10, "function-table depth")
	out := fs.String("o", "", "write the hetcore.prof/v1 report JSON here")
	js := fs.Bool("json", false, "print the report JSON to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := harness.RunHotspots(harness.HotspotsOptions{
		Device: *device, Config: *config, Workload: *workload,
		Instructions: *instr, Seed: *seed, TopN: *top,
	})
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *js {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Print(rep.Format())
	if *out != "" {
		fmt.Printf("\nwrote %s\n", *out)
	}
	return nil
}

// trend gates the newest history entries against the median of their
// predecessors.
func trend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	history := fs.String("history", "BENCH_history.jsonl", "history file (JSONL)")
	window := fs.Int("window", 0, "median window: last N prior entries per kind (0 = all)")
	tol := fs.Float64("tol", 0.1, "tolerance for deterministic metrics, percent")
	rateTol := fs.Float64("rate-tol", 25, "tolerance for host-timing metrics, percent")
	quiet := fs.Bool("q", false, "only print regressions and the verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries, err := harness.LoadHistory(*history)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("trend: %s has no entries", *history)
	}
	res := harness.Trend(entries, *window, harness.DiffOptions{
		RelTol:  *tol / 100,
		RateTol: *rateTol / 100,
	})
	if *quiet {
		for _, k := range res.Kinds {
			for _, row := range k.Diff.Regressions() {
				fmt.Printf("%s %s: %s -> %s (%.2f%%) REGRESSED\n",
					k.Kind, row.Metric, harness.FormatMetric(row.Old),
					harness.FormatMetric(row.New), row.DeltaPct)
			}
		}
	} else if err := res.Format(os.Stdout); err != nil {
		return err
	}
	if res.Regressed() {
		return fmt.Errorf("trend regression in %s", *history)
	}
	if *quiet {
		fmt.Println("-- trend OK")
	}
	return nil
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.1, "tolerance for deterministic metrics, percent")
	rateTol := fs.Float64("rate-tol", 25, "tolerance for host-timing metrics, percent")
	quiet := fs.Bool("q", false, "only print regressions and the verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff requires exactly two files: old.json new.json")
	}
	res, err := harness.DiffFiles(fs.Arg(0), fs.Arg(1), harness.DiffOptions{
		RelTol:  *tol / 100,
		RateTol: *rateTol / 100,
	})
	if err != nil {
		return err
	}
	if *quiet {
		for _, row := range res.Regressions() {
			fmt.Printf("%s: %s -> %s (%.2f%%) REGRESSED\n",
				row.Metric, harness.FormatMetric(row.Old), harness.FormatMetric(row.New), row.DeltaPct)
		}
	} else if err := res.Format(os.Stdout); err != nil {
		return err
	}
	if res.Regressed() {
		return fmt.Errorf("regression: %d metric(s) beyond tolerance (%s vs %s)",
			len(res.Regressions()), fs.Arg(0), fs.Arg(1))
	}
	if *quiet {
		fmt.Printf("-- OK: %d metric(s) within tolerance\n", len(res.Rows))
	}
	return nil
}
