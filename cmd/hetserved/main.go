// Command hetserved is the networked simulation daemon of internal/dist.
//
// Usage:
//
//	hetserved [-addr :9090] [-cache-dir DIR] [-jobs N] [-addr-file F]
//
// The daemon executes simulation jobs POSTed to /v1/jobs on a local
// run-plan engine (internal/engine) and answers health probes on
// /v1/health. With -cache-dir every result is also written to the
// persistent content-addressed cache, so repeated jobs — from any
// client — are served from disk without simulating. Every request is
// instrumented (per-endpoint latency histograms, per-status error
// counters, queue-depth/in-flight gauges, a bounded request log) and
// summarised on GET /v1/stats, which also reports a runtime block
// (heap bytes, GC cycles, p99 GC pause, goroutines) so a fleet
// operator can spot memory or scheduler pressure without attaching a
// profiler; job responses carry the server-side
// queue/cache/execute/encode timing breakdown plus the client's trace
// context, which `-remote -trace-out` clients merge into per-worker
// Perfetto tracks. The observability endpoints of the live dashboard
// (/metrics.json, /metrics, /series, /events, the HTML index and the
// net/http/pprof handlers under /debug/pprof/) are mounted on the same
// listener, so an operator can watch a fleet worker with a browser —
// or grab a labelled CPU profile from it under load — while it serves.
// cmd/hetload drives synthetic load at a daemon and gates its latency
// quantiles.
//
// Clients (hetcore, hetsweep, hetrace) point -remote at one or more
// daemons; the stamp in every response lets a client reject workers
// built from different code or device tables, keeping results
// byte-identical to a purely local run.
//
// -addr :0 picks a free port; -addr-file writes the bound address to a
// file once listening, which scripts use to discover the port.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"hetcore/internal/dist"
	"hetcore/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("hetserved", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address (host:port; :0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory shared with local runs")
	var jobs int
	fs.IntVar(&jobs, "jobs", 0, "concurrent simulation jobs (0 = NumCPU)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	// The daemon always runs with full telemetry: the obs endpoints are
	// mounted on the serving listener, so there is no separate -serve.
	o := &obs.Observer{
		Metrics:  obs.NewRegistry(),
		Series:   obs.NewSeriesSet(0),
		Events:   obs.NewEventLog(0),
		Progress: obs.NewProgress(io.Discard, 0),
	}

	d, err := dist.NewDaemon(dist.DaemonConfig{
		Jobs:     jobs,
		CacheDir: *cacheDir,
		Obs:      o,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hetserved: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetserved:", err)
		os.Exit(1)
	}
	if err := d.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "hetserved:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(d.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hetserved:", err)
			d.Close()
			os.Exit(1)
		}
	}
	cache := *cacheDir
	if cache == "" {
		cache = "(memory only)"
	}
	fmt.Fprintf(os.Stderr, "hetserved: listening on %s  stamp=%s  jobs=%d  cache=%s\n",
		d.Addr(), dist.Stamp(), d.Engine().Workers(), cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "hetserved: %s, shutting down\n", s)
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hetserved:", err)
		os.Exit(1)
	}
}
