module hetcore

go 1.22
